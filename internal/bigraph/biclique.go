package bigraph

// Biclique is a pair of vertex sets (A ⊆ L, B ⊆ R) given as unified ids.
// The zero value is the empty biclique.
type Biclique struct {
	A []int // left-side unified ids
	B []int // right-side unified ids
}

// Size returns min(|A|, |B|), i.e. the balanced size of the biclique. The
// paper measures results as |A|+|B| of a balanced biclique; Size is the
// per-side count (half of that).
func (bc Biclique) Size() int {
	if len(bc.A) < len(bc.B) {
		return len(bc.A)
	}
	return len(bc.B)
}

// IsBicliqueOf verifies that every (a, b) pair in A×B is an edge of g and
// that the sides are on the correct partitions with no duplicates.
func (bc Biclique) IsBicliqueOf(g *Graph) bool {
	seen := make(map[int]bool, len(bc.A)+len(bc.B))
	for _, a := range bc.A {
		if a < 0 || a >= g.NumVertices() || !g.IsLeft(a) || seen[a] {
			return false
		}
		seen[a] = true
	}
	for _, b := range bc.B {
		if b < 0 || b >= g.NumVertices() || g.IsLeft(b) || seen[b] {
			return false
		}
		seen[b] = true
	}
	for _, a := range bc.A {
		for _, b := range bc.B {
			if !g.HasEdge(a, b) {
				return false
			}
		}
	}
	return true
}

// IsBalanced reports whether |A| == |B|.
func (bc Biclique) IsBalanced() bool { return len(bc.A) == len(bc.B) }

// Balanced trims the larger side (arbitrarily, keeping prefix order) so the
// result is balanced. Removing vertices from a biclique keeps it a
// biclique, so the result is a balanced biclique whenever bc is a biclique.
func (bc Biclique) Balanced() Biclique {
	s := bc.Size()
	return Biclique{A: bc.A[:s:s], B: bc.B[:s:s]}
}

// Remap translates the vertex ids through newToOld, used to lift a
// biclique found in an induced subgraph back to the parent graph.
func (bc Biclique) Remap(newToOld []int) Biclique {
	out := Biclique{A: make([]int, len(bc.A)), B: make([]int, len(bc.B))}
	for i, v := range bc.A {
		out.A[i] = newToOld[v]
	}
	for i, v := range bc.B {
		out.B[i] = newToOld[v]
	}
	return out
}
