package bigraph

import (
	"fmt"
	"slices"
)

// Delta is a batch of edge mutations in side-local (left, right) index
// pairs — the unit of change for mutable served graphs. Deletions apply
// before additions, so an edge named in both lists ends up present.
//
// Side sizes are fixed: a delta may not grow |L| or |R|. Growing the left
// side would renumber every right vertex's unified id (right ids are
// NL+j), silently invalidating any artifact pinned to an earlier
// snapshot — callers that need a different shape upload a new graph.
type Delta struct {
	Add [][2]int `json:"add,omitempty"`
	Del [][2]int `json:"del,omitempty"`
}

// Empty reports whether the delta names no edges at all.
func (d Delta) Empty() bool { return len(d.Add) == 0 && len(d.Del) == 0 }

// Apply returns a new immutable graph with d applied to g, leaving g
// untouched (copy-on-write), plus the effective delta: the additions that
// were not already present and the deletions that actually removed an
// edge, each deduplicated. An edge named in both lists is a net no-op and
// appears in neither. When nothing effectively changes, g itself is
// returned.
//
// The rebuild bypasses the Builder's global edge sort: untouched
// adjacency spans are copied wholesale and only the touched vertices
// merge their overlay, so a batch of b edges costs O(n + m + b log b)
// flat-copy work instead of the builder's O((m+b) log(m+b)).
func (g *Graph) Apply(d Delta) (*Graph, Delta, error) {
	check := func(kind string, e [2]int) error {
		if e[0] < 0 || e[0] >= g.nl || e[1] < 0 || e[1] >= g.nr {
			return fmt.Errorf("bigraph: %s edge (%d,%d) out of range %dx%d", kind, e[0], e[1], g.nl, g.nr)
		}
		return nil
	}
	inAdd := make(map[[2]int]bool, len(d.Add))
	for _, e := range d.Add {
		if err := check("add", e); err != nil {
			return nil, Delta{}, err
		}
		inAdd[e] = true
	}
	var eff Delta
	seenDel := make(map[[2]int]bool, len(d.Del))
	for _, e := range d.Del {
		if err := check("del", e); err != nil {
			return nil, Delta{}, err
		}
		if seenDel[e] || inAdd[e] || !g.HasEdge(e[0], g.nl+e[1]) {
			continue
		}
		seenDel[e] = true
		eff.Del = append(eff.Del, e)
	}
	seenAdd := make(map[[2]int]bool, len(d.Add))
	for _, e := range d.Add {
		if seenAdd[e] || g.HasEdge(e[0], g.nl+e[1]) {
			continue
		}
		seenAdd[e] = true
		eff.Add = append(eff.Add, e)
	}
	if eff.Empty() {
		return g, eff, nil
	}

	// Per-vertex overlays in unified ids, recorded in both directions.
	type patch struct{ add, del []int32 }
	patches := make(map[int32]*patch, 2*(len(eff.Add)+len(eff.Del)))
	at := func(v int32) *patch {
		p := patches[v]
		if p == nil {
			p = &patch{}
			patches[v] = p
		}
		return p
	}
	for _, e := range eff.Add {
		u, v := int32(e[0]), int32(g.nl+e[1])
		at(u).add = append(at(u).add, v)
		at(v).add = append(at(v).add, u)
	}
	for _, e := range eff.Del {
		u, v := int32(e[0]), int32(g.nl+e[1])
		at(u).del = append(at(u).del, v)
		at(v).del = append(at(v).del, u)
	}

	n := g.nl + g.nr
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		deg := int32(g.Deg(v))
		if p := patches[int32(v)]; p != nil {
			deg += int32(len(p.add) - len(p.del))
		}
		off[v+1] = off[v] + deg
	}
	m2 := g.m + len(eff.Add) - len(eff.Del)
	adj := make([]int32, 2*m2)
	for v := 0; v < n; v++ {
		old := g.Neighbors(v)
		p := patches[int32(v)]
		if p == nil {
			copy(adj[off[v]:off[v+1]], old)
			continue
		}
		slices.Sort(p.add)
		slices.Sort(p.del)
		// Merge: old list minus the deletions, interleaved with the sorted
		// additions. Effective adds are absent from old and effective dels
		// are present exactly once, so the result stays sorted and unique.
		w, ai, di := off[v], 0, 0
		for _, x := range old {
			for ai < len(p.add) && p.add[ai] < x {
				adj[w] = p.add[ai]
				w++
				ai++
			}
			if di < len(p.del) && p.del[di] == x {
				di++
				continue
			}
			adj[w] = x
			w++
		}
		for ai < len(p.add) {
			adj[w] = p.add[ai]
			w++
			ai++
		}
	}
	return &Graph{nl: g.nl, nr: g.nr, off: off, adj: adj, m: m2}, eff, nil
}
