package bigraph

// DegWithin returns the degree of unified vertex v restricted to the
// alive mask (indexed by unified id); a nil mask means the whole graph.
// It is the subset-restricted counterpart of Deg, used by the
// decomposition peels and by incremental plan repair, where certificates
// are always evaluated inside a candidate vertex set rather than the
// full graph.
func (g *Graph) DegWithin(v int, alive []bool) int {
	if alive == nil {
		return g.Deg(v)
	}
	d := 0
	for _, w := range g.Neighbors(v) {
		if alive[w] {
			d++
		}
	}
	return d
}

// Endpoints returns the unified vertex ids touched by the delta — both
// endpoints of every addition and deletion, deduplicated, in ascending
// order. nl is the left side size of the graph the delta applies to
// (right-local index j maps to unified id nl+j). This is the seed set
// for incremental certificate repair: only vertices whose degree or
// two-hop neighbourhood a batch can change are reachable from it.
func (d Delta) Endpoints(nl int) []int {
	seen := make(map[int]bool, 2*(len(d.Add)+len(d.Del)))
	out := make([]int, 0, 2*(len(d.Add)+len(d.Del)))
	take := func(v int) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, e := range d.Add {
		take(e[0])
		take(nl + e[1])
	}
	for _, e := range d.Del {
		take(e[0])
		take(nl + e[1])
	}
	sortInts(out)
	return out
}
