package bigraph

import "math"

// Inducer builds induced subgraphs repeatedly while reusing all internal
// translation state. It replaces the map + sort + Builder pipeline of
// Induced with a single direct CSR fill: because new ids are assigned in
// ascending original-id order, the (sorted) adjacency lists of the host
// graph translate to sorted lists of the subgraph without any sorting.
//
// The returned Graph and newToOld table are freshly allocated — they
// escape into Plans and solver results and must not be tied to the
// Inducer's lifetime. Everything else (the old→new id table, membership
// stamps, side partitions, fill cursors) is reused across calls, so a
// steady-state induction costs exactly the four result allocations.
//
// An Inducer is not safe for concurrent use; each worker owns one.
type Inducer struct {
	mark  []int32 // mark[v] == epoch iff old id v is kept this call
	newID []int32 // valid where mark[v] == epoch
	epoch int32

	lefts, rights []int
	cur           []int32
}

// NewInducer returns an empty Inducer; buffers grow on first use.
func NewInducer() *Inducer { return &Inducer{} }

// prepare stamps a new epoch over translation tables covering n old ids.
func (ind *Inducer) prepare(n int) {
	if cap(ind.mark) < n {
		ind.mark = make([]int32, n)
		ind.newID = make([]int32, n)
		ind.epoch = 0
	}
	ind.mark = ind.mark[:n]
	ind.newID = ind.newID[:n]
	if ind.epoch == math.MaxInt32 {
		full := ind.mark[:cap(ind.mark)]
		for i := range full {
			full[i] = 0
		}
		ind.epoch = 0
	}
	ind.epoch++
}

// Induce materialises the subgraph of g induced by the unified ids in
// keep (duplicates are tolerated). Semantics match Graph.Induced: left
// vertices of the subgraph are the kept left vertices in ascending
// original order, likewise right, and newToOld maps new unified ids back
// to g's ids.
func (ind *Inducer) Induce(g *Graph, keep []int) (*Graph, []int) {
	lefts := ind.lefts[:0]
	rights := ind.rights[:0]
	for _, v := range keep {
		if g.IsLeft(v) {
			lefts = append(lefts, v)
		} else {
			rights = append(rights, v)
		}
	}
	sortInts(lefts)
	sortInts(rights)
	ind.lefts = dedupSorted(lefts)
	ind.rights = dedupSorted(rights)
	return ind.build(g)
}

// InduceByMask is Induce with membership given as a boolean mask indexed
// by unified id (mask[v] == true keeps v).
func (ind *Inducer) InduceByMask(g *Graph, mask []bool) (*Graph, []int) {
	lefts := ind.lefts[:0]
	rights := ind.rights[:0]
	for v, ok := range mask {
		if !ok {
			continue
		}
		if g.IsLeft(v) {
			lefts = append(lefts, v)
		} else {
			rights = append(rights, v)
		}
	}
	ind.lefts, ind.rights = lefts, rights
	return ind.build(g)
}

// build constructs the CSR subgraph from ind.lefts/ind.rights, both
// sorted ascending and duplicate-free.
func (ind *Inducer) build(g *Graph) (*Graph, []int) {
	ind.prepare(g.NumVertices())
	lefts, rights := ind.lefts, ind.rights
	nl2, nr2 := len(lefts), len(rights)
	n2 := nl2 + nr2
	ep := ind.epoch
	newToOld := make([]int, n2)
	for i, v := range lefts {
		ind.mark[v] = ep
		ind.newID[v] = int32(i)
		newToOld[i] = v
	}
	for j, v := range rights {
		ind.mark[v] = ep
		ind.newID[v] = int32(nl2 + j)
		newToOld[nl2+j] = v
	}

	// One pass over kept left vertices counts both endpoints' degrees.
	off := make([]int32, n2+1)
	m2 := 0
	for i, v := range lefts {
		for _, w := range g.Neighbors(v) {
			if ind.mark[w] == ep {
				off[i+1]++
				off[int(ind.newID[w])+1]++
				m2++
			}
		}
	}
	for x := 0; x < n2; x++ {
		off[x+1] += off[x]
	}

	adj := make([]int32, 2*m2)
	if cap(ind.cur) < n2 {
		ind.cur = make([]int32, n2)
	}
	cur := ind.cur[:n2]
	copy(cur, off[:n2])
	for i, v := range lefts {
		for _, w := range g.Neighbors(v) {
			if ind.mark[w] == ep {
				j := ind.newID[w]
				adj[cur[i]] = j
				cur[i]++
				adj[cur[j]] = int32(i)
				cur[j]++
			}
		}
	}
	// Left lists inherit sortedness from g's lists because new right ids
	// are monotone in old ids; right lists are filled in ascending new
	// left-id order.
	return &Graph{nl: nl2, nr: nr2, off: off, adj: adj, m: m2}, newToOld
}

// dedupSorted removes adjacent duplicates from a sorted slice in place.
func dedupSorted(a []int) []int {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}
