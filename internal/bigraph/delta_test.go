package bigraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// edgeSet collects a graph's edges as a set of side-local pairs.
func edgeSet(g *Graph) map[[2]int]bool {
	out := make(map[[2]int]bool, g.NumEdges())
	for _, e := range g.Edges() {
		out[e] = true
	}
	return out
}

func TestApplyBasic(t *testing.T) {
	g := FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 2}})
	g2, eff, err := g.Apply(Delta{
		Add: [][2]int{{2, 0}, {0, 0}, {2, 0}}, // {0,0} present, {2,0} duplicated
		Del: [][2]int{{1, 1}, {1, 2}},         // {1,2} absent
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Add) != 1 || eff.Add[0] != [2]int{2, 0} {
		t.Errorf("effective adds %v, want [[2 0]]", eff.Add)
	}
	if len(eff.Del) != 1 || eff.Del[0] != [2]int{1, 1} {
		t.Errorf("effective dels %v, want [[1 1]]", eff.Del)
	}
	want := map[[2]int]bool{{0, 0}: true, {0, 1}: true, {1, 0}: true, {2, 2}: true, {2, 0}: true}
	if got := edgeSet(g2); !reflect.DeepEqual(got, want) {
		t.Errorf("edges %v, want %v", got, want)
	}
	if g2.NumEdges() != 5 {
		t.Errorf("m = %d, want 5", g2.NumEdges())
	}
	// Copy-on-write: the original graph is untouched.
	if g.NumEdges() != 5 || !g.HasEdge(1, g.NL()+1) || g.HasEdge(2, g.NL()+0) {
		t.Error("Apply mutated the original graph")
	}
}

func TestApplyNoOp(t *testing.T) {
	g := FromEdges(2, 2, [][2]int{{0, 0}, {1, 1}})
	cases := []Delta{
		{},
		{Add: [][2]int{{0, 0}}}, // already present
		{Del: [][2]int{{0, 1}}}, // absent
		{Add: [][2]int{{0, 1}}, Del: [][2]int{{0, 1}}}, // del-then-add of an absent edge... effective add
	}
	for i, d := range cases[:3] {
		g2, eff, err := g.Apply(d)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !eff.Empty() {
			t.Errorf("case %d: effective delta %+v, want empty", i, eff)
		}
		if g2 != g {
			t.Errorf("case %d: no-op delta did not return the original graph", i)
		}
	}
	// An edge in both lists that is absent: deletion is a no-op, the
	// addition lands.
	g2, eff, err := g.Apply(cases[3])
	if err != nil {
		t.Fatal(err)
	}
	if len(eff.Add) != 1 || len(eff.Del) != 0 || !g2.HasEdge(0, g2.NL()+1) {
		t.Errorf("del+add of absent edge: eff %+v edges %v", eff, g2.Edges())
	}
	// An edge in both lists that is present: net no-op.
	g3, eff, err := g.Apply(Delta{Add: [][2]int{{0, 0}}, Del: [][2]int{{0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if !eff.Empty() || g3 != g {
		t.Errorf("del+add of present edge: eff %+v", eff)
	}
}

func TestApplyErrors(t *testing.T) {
	g := FromEdges(2, 3, [][2]int{{0, 0}})
	for _, d := range []Delta{
		{Add: [][2]int{{2, 0}}},
		{Add: [][2]int{{0, 3}}},
		{Add: [][2]int{{-1, 0}}},
		{Del: [][2]int{{0, -2}}},
		{Del: [][2]int{{5, 5}}},
	} {
		if _, _, err := g.Apply(d); err == nil {
			t.Errorf("Apply(%+v) accepted an out-of-range edge", d)
		}
	}
}

// randomDelta builds a delta of roughly k adds and k dels against g,
// drawn from the full index space (so some name absent or duplicate
// edges on purpose).
func randomDelta(rng *rand.Rand, g *Graph, k int) Delta {
	var d Delta
	edges := g.Edges()
	for i := 0; i < k; i++ {
		d.Add = append(d.Add, [2]int{rng.Intn(g.NL()), rng.Intn(g.NR())})
		if len(edges) > 0 && rng.Intn(2) == 0 {
			d.Del = append(d.Del, edges[rng.Intn(len(edges))])
		} else {
			d.Del = append(d.Del, [2]int{rng.Intn(g.NL()), rng.Intn(g.NR())})
		}
	}
	return d
}

// applyByRebuild is the oracle: materialise the edge set, delete, add,
// rebuild from scratch through the Builder.
func applyByRebuild(g *Graph, d Delta) *Graph {
	set := edgeSet(g)
	for _, e := range d.Del {
		delete(set, e)
	}
	for _, e := range d.Add {
		set[e] = true
	}
	b := NewBuilder(g.NL(), g.NR())
	for e := range set {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// TestApplyMatchesRebuild is the differential test of the copy-on-write
// path: across random graphs and random deltas, Apply must produce
// exactly the graph a from-scratch rebuild produces.
func TestApplyMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nl, nr := 1+rng.Intn(12), 1+rng.Intn(12)
		b := NewBuilder(nl, nr)
		for i := 0; i < rng.Intn(3*nl*nr/2+1); i++ {
			b.AddEdge(rng.Intn(nl), rng.Intn(nr))
		}
		g := b.Build()
		d := randomDelta(rng, g, rng.Intn(8))
		got, eff, err := g.Apply(d)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := applyByRebuild(g, d)
		if got.NL() != want.NL() || got.NR() != want.NR() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("trial %d: shape %dx%d/%d, want %dx%d/%d (delta %+v)",
				trial, got.NL(), got.NR(), got.NumEdges(), want.NL(), want.NR(), want.NumEdges(), d)
		}
		if !reflect.DeepEqual(got.Edges(), want.Edges()) {
			t.Fatalf("trial %d: edge sets diverged (delta %+v)\n got %v\nwant %v",
				trial, d, got.Edges(), want.Edges())
		}
		if g.NumEdges()-len(eff.Del)+len(eff.Add) != got.NumEdges() {
			t.Fatalf("trial %d: effective counts inconsistent: m %d -%d +%d != %d",
				trial, g.NumEdges(), len(eff.Del), len(eff.Add), got.NumEdges())
		}
		// Adjacency invariants the solvers rely on: sorted, duplicate-free
		// lists on both sides.
		for v := 0; v < got.NumVertices(); v++ {
			ns := got.Neighbors(v)
			for i := 1; i < len(ns); i++ {
				if ns[i] <= ns[i-1] {
					t.Fatalf("trial %d: vertex %d adjacency not strictly sorted: %v", trial, v, ns)
				}
			}
		}
	}
}
