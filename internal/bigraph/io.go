package bigraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is a simple edge list:
//
//	% optional comment lines
//	nL nR m
//	l r
//	...
//
// with side-local 0-based indices. Lines starting with '%' or '#' are
// comments (KONECT files use '%'). The m in the header is advisory; the
// reader trusts the actual number of edge lines.

// Write serialises g in the text edge-list format.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.NL(), g.NR(), g.NumEdges()); err != nil {
		return err
	}
	for l := 0; l < g.NL(); l++ {
		for _, r := range g.Neighbors(l) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", l, int(r)-g.NL()); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read parses the text edge-list format produced by Write. Servers
// parsing untrusted uploads should use ReadLimited: the header alone
// sizes the graph, so a tiny malicious file can demand an arbitrarily
// large allocation here.
func Read(r io.Reader) (*Graph, error) {
	return ReadLimited(r, 0)
}

// ReadLimited is Read with a cap on the total vertex count declared by
// the header (|L|+|R|); maxVertices <= 0 means unlimited. The cap is
// enforced before any size-proportional allocation.
func ReadLimited(r io.Reader, maxVertices int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == '%' || text[0] == '#' {
			continue
		}
		fields := strings.Fields(text)
		if b == nil {
			if len(fields) < 2 {
				return nil, fmt.Errorf("bigraph: line %d: bad header %q", line, text)
			}
			nl, err1 := strconv.Atoi(fields[0])
			nr, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil || nl < 0 || nr < 0 {
				return nil, fmt.Errorf("bigraph: line %d: bad header %q", line, text)
			}
			if maxVertices > 0 && nl+nr > maxVertices {
				return nil, fmt.Errorf("bigraph: line %d: graph %dx%d exceeds the %d-vertex limit", line, nl, nr, maxVertices)
			}
			b = NewBuilder(nl, nr)
			continue
		}
		if len(fields) != 2 {
			return nil, fmt.Errorf("bigraph: line %d: bad edge %q", line, text)
		}
		l, err1 := strconv.Atoi(fields[0])
		rr, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bigraph: line %d: bad edge %q", line, text)
		}
		if l < 0 || l >= b.nl || rr < 0 || rr >= b.nr {
			return nil, fmt.Errorf("bigraph: line %d: edge (%d,%d) out of range %dx%d", line, l, rr, b.nl, b.nr)
		}
		b.AddEdge(l, rr)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("bigraph: empty input")
	}
	return b.Build(), nil
}
