package bigraph

import (
	"math/rand"
	"testing"
)

// randomSparse builds a random bipartite graph that is usually
// disconnected: few edges relative to the vertex count.
func randomSparse(rng *rand.Rand, maxSide, maxEdges int) *Graph {
	nl, nr := 1+rng.Intn(maxSide), 1+rng.Intn(maxSide)
	b := NewBuilder(nl, nr)
	for e := rng.Intn(maxEdges + 1); e > 0; e-- {
		b.AddEdge(rng.Intn(nl), rng.Intn(nr))
	}
	return b.Build()
}

// TestComponentsPartitionVertices: every vertex appears in exactly one
// component, components are sorted ascending, and the list is ordered by
// smallest member.
func TestComponentsPartitionVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for it := 0; it < 200; it++ {
		g := randomSparse(rng, 20, 30)
		comps := g.Components()
		seen := make([]int, g.NumVertices())
		prevFirst := -1
		for _, c := range comps {
			if len(c) == 0 {
				t.Fatal("empty component")
			}
			if c[0] <= prevFirst {
				t.Fatalf("components not ordered by smallest member: %d after %d", c[0], prevFirst)
			}
			prevFirst = c[0]
			for i, v := range c {
				if i > 0 && c[i-1] >= v {
					t.Fatalf("component not sorted ascending: %v", c)
				}
				seen[v]++
			}
		}
		for v, n := range seen {
			if n != 1 {
				t.Fatalf("vertex %d in %d components", v, n)
			}
		}
	}
}

// TestComponentsPartitionEdges: inducing the graph on its components
// recovers every edge exactly once (no edge crosses components), and each
// component is internally connected.
func TestComponentsPartitionEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for it := 0; it < 200; it++ {
		g := randomSparse(rng, 20, 40)
		comps := g.Components()
		total := 0
		label := make([]int, g.NumVertices())
		for id, c := range comps {
			for _, v := range c {
				label[v] = id
			}
		}
		for _, c := range comps {
			sub, _ := g.Induced(c)
			total += sub.NumEdges()
			if len(c) > 1 && !connected(sub) {
				t.Fatalf("component of size %d not connected", len(c))
			}
		}
		if total != g.NumEdges() {
			t.Fatalf("components cover %d of %d edges", total, g.NumEdges())
		}
		for _, e := range g.Edges() {
			if label[e[0]] != label[g.Right(e[1])] {
				t.Fatalf("edge %v crosses components", e)
			}
		}
	}
}

// TestComponentsInducedRoundTrip: mapping every induced-subgraph edge
// through newToOld recovers an edge of the original graph, and mapping the
// original ids forward and back is the identity.
func TestComponentsInducedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for it := 0; it < 200; it++ {
		g := randomSparse(rng, 20, 40)
		for _, c := range g.Components() {
			sub, newToOld := g.Induced(c)
			if sub.NumVertices() != len(c) {
				t.Fatalf("induced lost vertices: %d of %d", sub.NumVertices(), len(c))
			}
			oldToNew := make(map[int]int, len(newToOld))
			for nv, ov := range newToOld {
				oldToNew[ov] = nv
			}
			for _, v := range c {
				nv, ok := oldToNew[v]
				if !ok || newToOld[nv] != v {
					t.Fatalf("id %d does not round-trip", v)
				}
			}
			for _, e := range sub.Edges() {
				ol, or := newToOld[e[0]], newToOld[sub.Right(e[1])]
				if !g.HasEdge(ol, or) {
					t.Fatalf("induced edge %v maps to non-edge (%d,%d)", e, ol, or)
				}
			}
		}
	}
}

// connected reports whether g is connected as an undirected graph.
func connected(g *Graph) bool {
	n := g.NumVertices()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, w := range g.Neighbors(v) {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, int(w))
			}
		}
	}
	return count == n
}
