package bigraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// fig1b is the sparse example graph of the paper's Figure 1(b), with
// L = {1..6} (indices 0..5) and R = {7..12} (indices 0..5). See the decomp
// package tests for how the edge set was reconstructed from the paper.
func fig1b() *Graph {
	edges := [][2]int{
		{0, 0},         // 1-7
		{1, 0}, {1, 1}, // 2-7, 2-8
		{2, 1}, {2, 2}, {2, 3}, // 3-8, 3-9, 3-10
		{3, 2}, {3, 3}, // 4-9, 4-10
		{4, 2}, {4, 3}, // 5-9, 5-10
		{5, 1}, {5, 4}, {5, 5}, // 6-8, 6-11, 6-12
	}
	return FromEdges(6, 6, edges)
}

func TestBuildBasics(t *testing.T) {
	g := fig1b()
	if g.NL() != 6 || g.NR() != 6 || g.NumVertices() != 12 {
		t.Fatalf("sizes: NL=%d NR=%d", g.NL(), g.NR())
	}
	if g.NumEdges() != 13 {
		t.Fatalf("m = %d, want 13", g.NumEdges())
	}
	if g.Deg(2) != 3 { // vertex "3" has neighbours 8,9,10
		t.Fatalf("deg(2) = %d, want 3", g.Deg(2))
	}
	if !g.HasEdge(2, g.Right(1)) || g.HasEdge(0, g.Right(5)) {
		t.Fatal("HasEdge wrong")
	}
	if g.HasEdge(g.Right(1), 0) {
		t.Fatal("HasEdge should be symmetric and (8,1) is not an edge")
	}
	if !g.HasEdge(g.Right(1), 1) {
		t.Fatal("HasEdge symmetric lookup failed")
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("dmax = %d, want 3", g.MaxDegree())
	}
}

func TestBuilderDeduplicates(t *testing.T) {
	b := NewBuilder(2, 2)
	b.AddEdge(0, 0)
	b.AddEdge(0, 0)
	b.AddEdge(1, 1)
	if b.NumEdgesAdded() != 3 {
		t.Fatalf("NumEdgesAdded = %d", b.NumEdgesAdded())
	}
	g := b.Build()
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d, want 2 after dedup", g.NumEdges())
	}
}

func TestNeighborsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := NewBuilder(40, 40)
	for i := 0; i < 600; i++ {
		b.AddEdge(rng.Intn(40), rng.Intn(40))
	}
	g := b.Build()
	for v := 0; v < g.NumVertices(); v++ {
		ns := g.Neighbors(v)
		for i := 1; i < len(ns); i++ {
			if ns[i-1] >= ns[i] {
				t.Fatalf("neighbours of %d not strictly sorted: %v", v, ns)
			}
		}
		// bipartite: all neighbours on the other side
		for _, w := range ns {
			if g.IsLeft(v) == g.IsLeft(int(w)) {
				t.Fatalf("edge within one side: %d-%d", v, w)
			}
		}
	}
}

func TestDensity(t *testing.T) {
	g := FromEdges(2, 2, [][2]int{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	if g.Density() != 1.0 {
		t.Fatalf("density = %v", g.Density())
	}
	if (&Graph{}).Density() != 0 {
		t.Fatal("empty graph density should be 0")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := fig1b()
	g2 := FromEdges(g.NL(), g.NR(), g.Edges())
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip m = %d", g2.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g.Deg(v) != g2.Deg(v) {
			t.Fatalf("deg mismatch at %d", v)
		}
	}
}

func TestInduced(t *testing.T) {
	g := fig1b()
	// keep vertices 3,4,5 (ids 2,3,4) and 9,10 (ids 8,9): a 3x2 biclique
	sub, newToOld := g.Induced([]int{2, 3, 4, 8, 9})
	if sub.NL() != 3 || sub.NR() != 2 {
		t.Fatalf("sub sizes %dx%d", sub.NL(), sub.NR())
	}
	if sub.NumEdges() != 6 {
		t.Fatalf("sub m = %d, want 6", sub.NumEdges())
	}
	want := []int{2, 3, 4, 8, 9}
	for i, v := range newToOld {
		if v != want[i] {
			t.Fatalf("newToOld = %v", newToOld)
		}
	}
}

func TestInducedByMask(t *testing.T) {
	g := fig1b()
	mask := make([]bool, g.NumVertices())
	mask[2], mask[3], mask[8], mask[9] = true, true, true, true
	sub, _ := g.InducedByMask(mask)
	if sub.NL() != 2 || sub.NR() != 2 || sub.NumEdges() != 4 {
		t.Fatalf("induced by mask: %dx%d m=%d", sub.NL(), sub.NR(), sub.NumEdges())
	}
}

func TestInducedEmpty(t *testing.T) {
	g := fig1b()
	sub, newToOld := g.Induced(nil)
	if sub.NumVertices() != 0 || len(newToOld) != 0 {
		t.Fatal("empty induced subgraph not empty")
	}
}

func TestIORoundTrip(t *testing.T) {
	g := fig1b()
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NL() != g.NL() || g2.NR() != g.NR() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip mismatch")
	}
	for v := 0; v < g.NumVertices(); v++ {
		ns, ns2 := g.Neighbors(v), g2.Neighbors(v)
		if len(ns) != len(ns2) {
			t.Fatalf("deg mismatch at %d", v)
		}
		for i := range ns {
			if ns[i] != ns2[i] {
				t.Fatalf("adj mismatch at %d", v)
			}
		}
	}
}

func TestReadComments(t *testing.T) {
	in := "% konect style comment\n# hash comment\n2 2 2\n0 1\n1 0\n"
	g, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m = %d", g.NumEdges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",             // empty
		"x y\n",        // bad header
		"2\n",          // short header
		"2 2 1\n0\n",   // short edge
		"2 2 1\na b\n", // non-numeric edge
		"2 2 1\n5 0\n", // out of range
		"-1 2 0\n",     // negative header
	}
	for _, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) succeeded, want error", in)
		}
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBuilder(1, 1).AddEdge(1, 0)
}

func TestBicliqueVerify(t *testing.T) {
	g := fig1b()
	bc := Biclique{A: []int{2, 3}, B: []int{8, 9}} // ({3,4},{9,10})
	if !bc.IsBicliqueOf(g) {
		t.Fatal("known biclique rejected")
	}
	if !bc.IsBalanced() || bc.Size() != 2 {
		t.Fatal("balance/size wrong")
	}
	bad := Biclique{A: []int{0, 2}, B: []int{8}}
	if bad.IsBicliqueOf(g) {
		t.Fatal("non-biclique accepted (1 is not adjacent to 9)")
	}
	wrongSide := Biclique{A: []int{8}, B: []int{2}}
	if wrongSide.IsBicliqueOf(g) {
		t.Fatal("side-swapped biclique accepted")
	}
	dup := Biclique{A: []int{2, 2}, B: []int{8, 9}}
	if dup.IsBicliqueOf(g) {
		t.Fatal("duplicate vertex accepted")
	}
}

func TestBicliqueBalancedTrims(t *testing.T) {
	bc := Biclique{A: []int{1, 2, 3}, B: []int{10, 11}}
	bal := bc.Balanced()
	if len(bal.A) != 2 || len(bal.B) != 2 {
		t.Fatalf("Balanced = %+v", bal)
	}
}

func TestBicliqueRemap(t *testing.T) {
	bc := Biclique{A: []int{0, 1}, B: []int{2}}
	m := []int{10, 20, 30}
	got := bc.Remap(m)
	if got.A[0] != 10 || got.A[1] != 20 || got.B[0] != 30 {
		t.Fatalf("Remap = %+v", got)
	}
}

// TestQuickInducedPreservesEdges: for random graphs and random keep sets,
// the induced subgraph has exactly the edges with both endpoints kept.
func TestQuickInducedPreservesEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl, nr := 1+rng.Intn(12), 1+rng.Intn(12)
		b := NewBuilder(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Intn(3) == 0 {
					b.AddEdge(l, r)
				}
			}
		}
		g := b.Build()
		mask := make([]bool, g.NumVertices())
		var keep []int
		for v := range mask {
			if rng.Intn(2) == 0 {
				mask[v] = true
				keep = append(keep, v)
			}
		}
		sub, newToOld := g.Induced(keep)
		// count edges with both endpoints kept
		want := 0
		for _, e := range g.Edges() {
			if mask[e[0]] && mask[g.Right(e[1])] {
				want++
			}
		}
		if sub.NumEdges() != want {
			return false
		}
		// every subgraph edge maps back to an original edge
		for _, e := range sub.Edges() {
			if !g.HasEdge(newToOld[e[0]], newToOld[sub.Right(e[1])]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
