package bigraph

import (
	"strings"
	"testing"
)

func TestReadKONECT(t *testing.T) {
	in := `% bip unweighted
% 4 3 5
1 1
1 2
2 3 1.0 1234567
3 5
`
	g, err := ReadKONECT(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NL() != 3 || g.NR() != 5 {
		t.Fatalf("sizes %dx%d, want 3x5 (from hint)", g.NL(), g.NR())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(0, g.Right(0)) || !g.HasEdge(2, g.Right(4)) {
		t.Fatal("edges wrong")
	}
}

func TestReadKONECTNoHint(t *testing.T) {
	in := "% bip\n2 1\n2 4\n1 1\n1 1\n"
	g, err := ReadKONECT(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NL() != 2 || g.NR() != 4 {
		t.Fatalf("sizes %dx%d from max ids", g.NL(), g.NR())
	}
	if g.NumEdges() != 3 { // duplicate 1-1 merged
		t.Fatalf("m = %d, want 3", g.NumEdges())
	}
}

func TestReadKONECTErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"% bip\nx y\n",   // non-numeric
		"% bip\n0 1\n",   // 0-based id
		"% bip\n1\n",     // short line
		"% 2 1 1\n1 2\n", // edge exceeds hint
	}
	for _, in := range cases {
		if _, err := ReadKONECT(strings.NewReader(in)); err == nil {
			t.Errorf("ReadKONECT(%q) succeeded, want error", in)
		}
	}
}
