package bigraph

import (
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/iotest"
)

func TestReadKONECT(t *testing.T) {
	in := `% bip unweighted
% 4 3 5
1 1
1 2
2 3 1.0 1234567
3 5
`
	g, err := ReadKONECT(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NL() != 3 || g.NR() != 5 {
		t.Fatalf("sizes %dx%d, want 3x5 (from hint)", g.NL(), g.NR())
	}
	if g.NumEdges() != 4 {
		t.Fatalf("m = %d, want 4", g.NumEdges())
	}
	if !g.HasEdge(0, g.Right(0)) || !g.HasEdge(2, g.Right(4)) {
		t.Fatal("edges wrong")
	}
}

func TestReadKONECTNoHint(t *testing.T) {
	in := "% bip\n2 1\n2 4\n1 1\n1 1\n"
	g, err := ReadKONECT(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NL() != 2 || g.NR() != 4 {
		t.Fatalf("sizes %dx%d from max ids", g.NL(), g.NR())
	}
	if g.NumEdges() != 3 { // duplicate 1-1 merged
		t.Fatalf("m = %d, want 3", g.NumEdges())
	}
}

func TestReadKONECTErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"% bip\nx y\n",   // non-numeric
		"% bip\n0 1\n",   // 0-based id
		"% bip\n1\n",     // short line
		"% 2 1 1\n1 2\n", // edge exceeds hint
	}
	for _, in := range cases {
		if _, err := ReadKONECT(strings.NewReader(in)); err == nil {
			t.Errorf("ReadKONECT(%q) succeeded, want error", in)
		}
	}
}

// Regression: the "% m nl nr" size hint must never be trusted over the
// edge data — an out-of-range 1-based id is a parse error, on either
// side, whether the hint precedes or follows the edge.
func TestReadKONECTHintBounds(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"left exceeds hint", "% 3 2 2\n5 1\n"},
		{"right exceeds hint", "% 3 2 2\n1 5\n"},
		{"both exceed hint", "% 1 2 2\n9 9\n"},
		{"hint after edge", "5 1\n% 3 2 2\n"},
		{"later edge exceeds", "% 3 2 2\n1 1\n2 2\n3 1\n"},
	}
	for _, tc := range cases {
		g, err := ReadKONECT(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: ReadKONECT(%q) built a %dx%d graph, want error",
				tc.name, tc.in, g.NL(), g.NR())
			continue
		}
		if !strings.Contains(err.Error(), "hint") {
			t.Errorf("%s: error %q does not mention the size hint", tc.name, err)
		}
	}
}

// A tiny input carrying a huge size hint (or huge ids) must be rejected
// by the limited readers before the adjacency arrays are allocated.
func TestReadLimitedVertexCap(t *testing.T) {
	if _, err := ReadKONECTLimited(strings.NewReader("% 1 1000000000 1000000000\n1 1\n"), 1000); err == nil {
		t.Error("ReadKONECTLimited accepted a hint over the vertex cap")
	}
	if _, err := ReadKONECTLimited(strings.NewReader("999999 999999\n"), 1000); err == nil {
		t.Error("ReadKONECTLimited accepted observed ids over the vertex cap")
	}
	if _, err := ReadLimited(strings.NewReader("1000000000 1000000000 1\n0 0\n"), 1000); err == nil {
		t.Error("ReadLimited accepted a header over the vertex cap")
	}
	if g, err := ReadKONECTLimited(strings.NewReader("% 1 3 4\n1 1\n"), 1000); err != nil || g.NL() != 3 || g.NR() != 4 {
		t.Errorf("ReadKONECTLimited rejected an in-cap graph: %v", err)
	}
}

// Regression: a failing reader (truncated stream, oversized line) must
// surface the scanner error instead of treating the prefix as a complete
// file.
func TestReadKONECTScannerError(t *testing.T) {
	readErr := errors.New("boom: connection reset")
	in := io.MultiReader(strings.NewReader("% bip\n1 1\n2 2\n"), iotest.ErrReader(readErr))
	_, err := ReadKONECT(in)
	if err == nil {
		t.Fatal("ReadKONECT on a failing reader succeeded, want error")
	}
	if !errors.Is(err, readErr) {
		t.Fatalf("error %q does not wrap the underlying read error", err)
	}
}

func TestWriteKONECTRoundTrip(t *testing.T) {
	// Includes an isolated trailing right vertex (index 4) that only the
	// size hint can preserve.
	g := FromEdges(3, 5, [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 3}})
	var buf strings.Builder
	if err := WriteKONECT(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadKONECT(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("reparse: %v\ninput:\n%s", err, buf.String())
	}
	if g2.NL() != g.NL() || g2.NR() != g.NR() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip %dx%d/%d edges, want %dx%d/%d",
			g2.NL(), g2.NR(), g2.NumEdges(), g.NL(), g.NR(), g.NumEdges())
	}
	if !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Fatalf("round trip edges %v, want %v", g2.Edges(), g.Edges())
	}
}
