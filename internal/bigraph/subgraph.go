package bigraph

import "sort"

// Induced materialises the subgraph induced by the given unified vertex
// ids. The result keeps the bipartite split; left vertices of the subgraph
// are the kept left vertices in ascending original order, and likewise for
// the right side.
//
// The second return value maps new unified ids back to original unified
// ids (newToOld[newID] = oldID).
func (g *Graph) Induced(keep []int) (*Graph, []int) {
	return NewInducer().Induce(g, keep)
}

// InducedByMask is Induced with membership given as a boolean mask indexed
// by unified id. Vertices with mask[v] == true are kept.
func (g *Graph) InducedByMask(mask []bool) (*Graph, []int) {
	return NewInducer().InduceByMask(g, mask)
}

func sortInts(a []int) {
	if sort.IntsAreSorted(a) {
		return // the common case: callers pass ascending id lists
	}
	sort.Ints(a)
}

// IdentityMap returns the identity id mapping of length n — the newToOld
// table of an unreduced graph.
func IdentityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// ComposeMap rewrites inner (ids into a mid graph) in place so it maps
// directly into the outer graph: inner[i] = outer[inner[i]]. Used to
// collapse chains of Induced/InducedByMask newToOld tables.
func ComposeMap(inner, outer []int) {
	for i, v := range inner {
		inner[i] = outer[v]
	}
}
