package bigraph

import "sort"

// Induced materialises the subgraph induced by the given unified vertex
// ids. The result keeps the bipartite split; left vertices of the subgraph
// are the kept left vertices in ascending original order, and likewise for
// the right side.
//
// The second return value maps new unified ids back to original unified
// ids (newToOld[newID] = oldID).
func (g *Graph) Induced(keep []int) (*Graph, []int) {
	var lefts, rights []int
	for _, v := range keep {
		if g.IsLeft(v) {
			lefts = append(lefts, v)
		} else {
			rights = append(rights, v)
		}
	}
	sortInts(lefts)
	sortInts(rights)
	oldToNew := make(map[int]int, len(keep))
	newToOld := make([]int, 0, len(lefts)+len(rights))
	for i, v := range lefts {
		oldToNew[v] = i
		newToOld = append(newToOld, v)
	}
	for j, v := range rights {
		oldToNew[v] = len(lefts) + j
		newToOld = append(newToOld, v)
	}
	b := NewBuilder(len(lefts), len(rights))
	for i, v := range lefts {
		for _, w := range g.Neighbors(v) {
			if j, ok := oldToNew[int(w)]; ok {
				b.AddEdge(i, j-len(lefts))
			}
		}
	}
	return b.Build(), newToOld
}

// InducedByMask is Induced with membership given as a boolean mask indexed
// by unified id. Vertices with mask[v] == true are kept.
func (g *Graph) InducedByMask(mask []bool) (*Graph, []int) {
	keep := make([]int, 0)
	for v, ok := range mask {
		if ok {
			keep = append(keep, v)
		}
	}
	return g.Induced(keep)
}

func sortInts(a []int) {
	if sort.IntsAreSorted(a) {
		return // the common case: callers pass ascending id lists
	}
	sort.Ints(a)
}

// IdentityMap returns the identity id mapping of length n — the newToOld
// table of an unreduced graph.
func IdentityMap(n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = i
	}
	return m
}

// ComposeMap rewrites inner (ids into a mid graph) in place so it maps
// directly into the outer graph: inner[i] = outer[inner[i]]. Used to
// collapse chains of Induced/InducedByMask newToOld tables.
func ComposeMap(inner, outer []int) {
	for i, v := range inner {
		inner[i] = outer[v]
	}
}
