package bigraph

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec for Graph and Delta — the payload format of the
// write-ahead log (internal/wal) and of any future replication stream.
// Records are compact (uvarint throughout, neighbour lists gap-encoded
// off the sorted CSR) and versioned by a leading magic+version triple so
// the format can evolve without guessing. Framing — length prefixes and
// per-record CRCs — is the log's job, not the codec's: these byte slices
// are what goes inside a frame.
//
// The graph encoding is canonical: a Graph's adjacency is sorted and
// deduplicated, so MarshalBinary(g) is byte-identical for equal graphs
// and UnmarshalGraph(MarshalBinary(g)) reproduces g exactly. The decoder
// is written for untrusted bytes (fuzzed): every declared size is
// checked against the bytes actually present before any
// size-proportional allocation, so a tiny corrupt record cannot demand
// gigabytes.

const (
	// graphMagic0/1 + codecVersion lead every graph record.
	graphMagic0 = 'B'
	graphMagic1 = 'G'
	// deltaMagic0/1 + codecVersion lead every delta record.
	deltaMagic0  = 'B'
	deltaMagic1  = 'D'
	codecVersion = 1
)

// AppendBinary appends the canonical binary encoding of g to dst and
// returns the extended slice.
//
// Layout: "BG" version, uvarint nl, nr, m, then per left vertex its
// degree followed by its neighbour list as uvarint gaps from the
// previous neighbour (the first gap is relative to NL, the smallest
// right id). Right adjacency is redundant with left and not stored.
func (g *Graph) AppendBinary(dst []byte) []byte {
	dst = append(dst, graphMagic0, graphMagic1, codecVersion)
	dst = binary.AppendUvarint(dst, uint64(g.nl))
	dst = binary.AppendUvarint(dst, uint64(g.nr))
	dst = binary.AppendUvarint(dst, uint64(g.m))
	for l := 0; l < g.nl; l++ {
		ns := g.Neighbors(l)
		dst = binary.AppendUvarint(dst, uint64(len(ns)))
		prev := int32(g.nl)
		for _, r := range ns {
			dst = binary.AppendUvarint(dst, uint64(r-prev))
			prev = r
		}
	}
	return dst
}

// MarshalBinary returns the canonical binary encoding of g.
func (g *Graph) MarshalBinary() []byte { return g.AppendBinary(nil) }

// codecReader walks a record payload, turning every malformed read into
// an error instead of a panic.
type codecReader struct {
	data []byte
	off  int
}

func (r *codecReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("bigraph: codec: truncated varint at offset %d", r.off)
	}
	// binary.Uvarint tolerates over-long encodings (0x80 0x00 for 0);
	// reject them so every value has exactly one byte representation and
	// the format stays canonical.
	if n > 1 && r.data[r.off+n-1] == 0 {
		return 0, fmt.Errorf("bigraph: codec: non-minimal varint at offset %d", r.off)
	}
	r.off += n
	return v, nil
}

// size reads a uvarint that is about to size an allocation or a loop and
// bounds it by what the remaining bytes could possibly encode (every
// element costs at least one byte), so corrupt counts fail cleanly.
func (r *codecReader) size(what string) (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.data)-r.off) {
		return 0, fmt.Errorf("bigraph: codec: %s count %d exceeds the %d bytes remaining", what, v, len(r.data)-r.off)
	}
	return int(v), nil
}

func (r *codecReader) done() error {
	if r.off != len(r.data) {
		return fmt.Errorf("bigraph: codec: %d trailing bytes", len(r.data)-r.off)
	}
	return nil
}

func checkMagic(data []byte, m0, m1 byte, kind string) error {
	if len(data) < 3 || data[0] != m0 || data[1] != m1 {
		return fmt.Errorf("bigraph: codec: not a %s record", kind)
	}
	if data[2] != codecVersion {
		return fmt.Errorf("bigraph: codec: unsupported %s version %d (want %d)", kind, data[2], codecVersion)
	}
	return nil
}

// UnmarshalGraph decodes a graph encoded by Graph.AppendBinary. The
// input is treated as untrusted: structural violations (out-of-range
// neighbours, unsorted lists, declared sizes the bytes cannot back)
// return errors, never panics or unbounded allocations.
func UnmarshalGraph(data []byte) (*Graph, error) {
	if err := checkMagic(data, graphMagic0, graphMagic1, "graph"); err != nil {
		return nil, err
	}
	r := &codecReader{data: data, off: 3}
	nl64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	nr64, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if nl64+nr64 > math.MaxInt32 {
		return nil, fmt.Errorf("bigraph: codec: graph %dx%d too large", nl64, nr64)
	}
	nl, nr := int(nl64), int(nr64)
	m, err := r.size("edge")
	if err != nil {
		return nil, err
	}
	// Each left vertex costs at least a degree byte: a huge nl with a
	// short payload is corrupt, not a licence to allocate.
	if nl > len(data)-r.off {
		return nil, fmt.Errorf("bigraph: codec: %d left vertices exceed the %d bytes remaining", nl, len(data)-r.off)
	}
	n := nl + nr
	off := make([]int32, n+1)
	adj := make([]int32, 2*m)
	// First pass: left lists decode directly into adj[0:m] in CSR order;
	// right degrees accumulate for the second pass.
	rdeg := make([]int32, nr)
	w := 0
	for l := 0; l < nl; l++ {
		deg, err := r.size(fmt.Sprintf("vertex %d neighbour", l))
		if err != nil {
			return nil, err
		}
		if w+deg > m {
			return nil, fmt.Errorf("bigraph: codec: degrees exceed declared edge count %d", m)
		}
		off[l+1] = off[l] + int32(deg)
		prev := int32(nl)
		for k := 0; k < deg; k++ {
			gap, err := r.uvarint()
			if err != nil {
				return nil, err
			}
			if k > 0 && gap == 0 {
				return nil, fmt.Errorf("bigraph: codec: duplicate neighbour in vertex %d list", l)
			}
			v := int64(prev) + int64(gap)
			if v >= int64(n) {
				return nil, fmt.Errorf("bigraph: codec: neighbour %d of vertex %d out of range %dx%d", v, l, nl, nr)
			}
			prev = int32(v)
			adj[w] = prev
			rdeg[prev-int32(nl)]++
			w++
		}
	}
	if w != m {
		return nil, fmt.Errorf("bigraph: codec: %d edges decoded, header declared %d", w, m)
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	// Second pass: right offsets from the accumulated degrees, then fill
	// right lists by walking left lists in order — left ids arrive
	// ascending, so every right list comes out sorted without a sort.
	for j := 0; j < nr; j++ {
		off[nl+j+1] = off[nl+j] + rdeg[j]
	}
	cur := make([]int32, nr)
	copy(cur, off[nl:nl+nr])
	for l := 0; l < nl; l++ {
		for _, v := range adj[off[l]:off[l+1]] {
			j := v - int32(nl)
			adj[cur[j]] = int32(l)
			cur[j]++
		}
	}
	return &Graph{nl: nl, nr: nr, off: off, adj: adj, m: m}, nil
}

// AppendBinary appends the binary encoding of d to dst. Indices must be
// non-negative (they are side-local, as validated by Graph.Apply); a
// negative index returns an error rather than a corrupt record. The
// encoding preserves list order and multiplicity exactly, so the
// round trip is the identity on any valid Delta.
func (d Delta) AppendBinary(dst []byte) ([]byte, error) {
	dst = append(dst, deltaMagic0, deltaMagic1, codecVersion)
	var err error
	if dst, err = appendEdgeList(dst, d.Add, "add"); err != nil {
		return nil, err
	}
	return appendEdgeList(dst, d.Del, "del")
}

func appendEdgeList(dst []byte, edges [][2]int, kind string) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(edges)))
	for _, e := range edges {
		if e[0] < 0 || e[1] < 0 {
			return nil, fmt.Errorf("bigraph: codec: negative %s edge (%d,%d)", kind, e[0], e[1])
		}
		dst = binary.AppendUvarint(dst, uint64(e[0]))
		dst = binary.AppendUvarint(dst, uint64(e[1]))
	}
	return dst, nil
}

// UnmarshalDelta decodes a delta encoded by Delta.AppendBinary, with the
// same untrusted-input discipline as UnmarshalGraph.
func UnmarshalDelta(data []byte) (Delta, error) {
	if err := checkMagic(data, deltaMagic0, deltaMagic1, "delta"); err != nil {
		return Delta{}, err
	}
	r := &codecReader{data: data, off: 3}
	var d Delta
	var err error
	if d.Add, err = readEdgeList(r, "add"); err != nil {
		return Delta{}, err
	}
	if d.Del, err = readEdgeList(r, "del"); err != nil {
		return Delta{}, err
	}
	if err := r.done(); err != nil {
		return Delta{}, err
	}
	return d, nil
}

func readEdgeList(r *codecReader, kind string) ([][2]int, error) {
	n, err := r.size(kind + " edge")
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	edges := make([][2]int, n)
	for i := range edges {
		l, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		rr, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if l > math.MaxInt32 || rr > math.MaxInt32 {
			return nil, fmt.Errorf("bigraph: codec: %s edge (%d,%d) out of int32 range", kind, l, rr)
		}
		edges[i] = [2]int{int(l), int(rr)}
	}
	return edges, nil
}
