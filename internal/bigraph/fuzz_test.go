package bigraph

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzReadKONECT is the malformed-input fuzz harness for the KONECT
// parser, the format the mbbserved upload endpoint exposes to untrusted
// clients. Invariants: ReadKONECT never panics; when it accepts an input,
// the parse → WriteKONECT → reparse round trip reproduces the graph
// exactly (sizes and edge set). CI runs it as a bounded smoke step next
// to FuzzSolversAgree.
// FuzzGraphApply is the differential fuzz harness for the copy-on-write
// mutation path behind the mbbserved edge endpoints: a byte-encoded
// graph plus delta is applied via Graph.Apply and via a from-scratch
// Builder rebuild, and the two must agree exactly (shape, edge set,
// sorted adjacency). Bytes decode in pairs as (l, r) indices mod the
// side sizes; base/add/del streams are split by length prefixes, so any
// mutated input is a valid case. The nightly workflow runs it for
// minutes; CI runs a bounded smoke.
func FuzzGraphApply(f *testing.F) {
	f.Add(uint8(3), uint8(3), []byte{0, 0, 0, 1, 1, 0, 1, 1}, []byte{2, 2}, []byte{0, 0})
	f.Add(uint8(1), uint8(1), []byte{}, []byte{0, 0}, []byte{0, 0})
	f.Add(uint8(5), uint8(2), []byte{0, 0, 1, 1, 2, 0, 3, 1, 4, 0}, []byte{}, []byte{2, 0, 4, 0})
	f.Add(uint8(7), uint8(7), []byte{1, 2, 3, 4, 5, 6}, []byte{6, 6, 6, 5, 5, 6}, []byte{})
	f.Add(uint8(0), uint8(4), []byte{}, []byte{}, []byte{})
	f.Fuzz(func(t *testing.T, nlb, nrb uint8, base, add, del []byte) {
		nl, nr := int(nlb%16), int(nrb%16)
		pairs := func(data []byte) [][2]int {
			if nl == 0 || nr == 0 {
				return nil
			}
			var out [][2]int
			for i := 0; i+1 < len(data); i += 2 {
				out = append(out, [2]int{int(data[i]) % nl, int(data[i+1]) % nr})
			}
			return out
		}
		g := FromEdges(nl, nr, pairs(base))
		d := Delta{Add: pairs(add), Del: pairs(del)}
		got, eff, err := g.Apply(d)
		if err != nil {
			t.Fatalf("in-range delta rejected: %v", err)
		}
		want := applyByRebuild(g, d)
		if got.NL() != want.NL() || got.NR() != want.NR() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("shape %dx%d/%d, want %dx%d/%d",
				got.NL(), got.NR(), got.NumEdges(), want.NL(), want.NR(), want.NumEdges())
		}
		if !reflect.DeepEqual(got.Edges(), want.Edges()) {
			t.Fatalf("edge sets diverged: got %v want %v", got.Edges(), want.Edges())
		}
		if g.NumEdges()-len(eff.Del)+len(eff.Add) != got.NumEdges() {
			t.Fatalf("effective counts inconsistent: m %d -%d +%d != %d",
				g.NumEdges(), len(eff.Del), len(eff.Add), got.NumEdges())
		}
	})
}

func FuzzReadKONECT(f *testing.F) {
	seeds := []string{
		// Well-formed, with and without the size hint.
		"% bip unweighted\n% 4 3 5\n1 1\n1 2\n2 3 1.0 1234567\n3 5\n",
		"% bip\n2 1\n2 4\n1 1\n1 1\n",
		"1 1\n",
		// Comments, blank lines, '#' comments, hint-lookalike comments.
		"% bip unweighted\n\n# a comment\n%  1 2 3 4\n1 1\n\n2 2\n",
		"% x y z\n1 1\n",
		// Hint abuse: out-of-range edges, hint after edges, zero/negative
		// sizes, duplicate hints.
		"% 3 2 2\n5 1\n",
		"5 1\n% 3 2 2\n",
		"% 1 0 5\n1 1\n",
		"% 1 -2 5\n1 1\n",
		"% 2 2 2\n% 9 9 9\n2 2\n",
		// Garbage.
		"",
		"hello world\n",
		"1\n",
		"0 0\n",
		"-1 -1\n",
		"1 999999999999999999999999\n",
		"% 1 1 1\n",
		"\x00\x01\x02\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data string) {
		// Fuzz through the limited reader — the service's path — with a
		// small cap: an unlimited parse would let a mutated size hint
		// ("% 1 9e8 9e8") demand gigabytes and OOM the fuzz run.
		const maxVerts = 1 << 16
		g, err := ReadKONECTLimited(strings.NewReader(data), maxVerts)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var buf strings.Builder
		if err := WriteKONECT(&buf, g); err != nil {
			t.Fatalf("WriteKONECT: %v", err)
		}
		g2, err := ReadKONECTLimited(strings.NewReader(buf.String()), maxVerts)
		if err != nil {
			t.Fatalf("reparse rejected WriteKONECT output: %v\n%s", err, buf.String())
		}
		if g2.NL() != g.NL() || g2.NR() != g.NR() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip %dx%d/%d edges, want %dx%d/%d (input %q)",
				g2.NL(), g2.NR(), g2.NumEdges(), g.NL(), g.NR(), g.NumEdges(), data)
		}
		if !reflect.DeepEqual(g2.Edges(), g.Edges()) {
			t.Fatalf("round trip changed the edge set (input %q)", data)
		}
	})
}
