package bigraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadKONECT parses the KONECT out.* bipartite edge-list format:
//
//	% bip unweighted
//	% <m> <nL> <nR>        (optional size hint)
//	<l> <r> [weight [timestamp]]
//	...
//
// Vertex ids are 1-based and the two columns index the two sides
// independently. Weights and timestamps are ignored; duplicate edges are
// merged. Side sizes are taken from the size hint when present, otherwise
// from the maximum observed ids.
//
// The parser is written for untrusted input: an edge id that exceeds the
// hinted side size, a malformed line, and an underlying read error (a
// truncated stream, a line over the 16 MiB scanner buffer) all return a
// clean error instead of a silently wrong graph. ReadKONECT itself puts
// no bound on the graph size; servers parsing untrusted uploads should
// use ReadKONECTLimited, which caps the vertex count before the
// adjacency arrays are allocated (a 30-byte file with a huge size hint
// would otherwise demand gigabytes).
func ReadKONECT(r io.Reader) (*Graph, error) {
	return ReadKONECTLimited(r, 0)
}

// ReadKONECTLimited is ReadKONECT with a cap on the total vertex count
// (|L|+|R|, whether it comes from the size hint or from observed ids);
// maxVertices <= 0 means unlimited. The cap is enforced before any
// size-proportional allocation.
func ReadKONECTLimited(r io.Reader, maxVertices int) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var edges [][2]int
	nl, nr := 0, 0
	hintSeen := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '%' || text[0] == '#' {
			// A comment of the form "% m nl nr" is the size hint.
			fields := strings.Fields(text[1:])
			if !hintSeen && len(fields) == 3 {
				if _, err1 := strconv.Atoi(fields[0]); err1 == nil {
					a, err2 := strconv.Atoi(fields[1])
					b, err3 := strconv.Atoi(fields[2])
					if err2 == nil && err3 == nil && a > 0 && b > 0 {
						nl, nr = a, b
						hintSeen = true
					}
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bigraph: konect line %d: %q", line, text)
		}
		l, err1 := strconv.Atoi(fields[0])
		rr, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || l < 1 || rr < 1 {
			return nil, fmt.Errorf("bigraph: konect line %d: bad ids %q", line, text)
		}
		if hintSeen && (l > nl || rr > nr) {
			// Never trust the size hint over the data: an out-of-range id
			// is a corrupt file, not licence to index past the sides.
			return nil, fmt.Errorf("bigraph: konect line %d: edge (%d,%d) exceeds size hint %dx%d", line, l, rr, nl, nr)
		}
		if !hintSeen {
			if l > nl {
				nl = l
			}
			if rr > nr {
				nr = rr
			}
		}
		edges = append(edges, [2]int{l - 1, rr - 1})
	}
	if err := sc.Err(); err != nil {
		// Scanner errors (short reads, bufio.ErrTooLong) are real I/O
		// failures: surfacing them keeps a truncated upload from parsing
		// as a smaller, valid-looking graph.
		return nil, fmt.Errorf("bigraph: konect read after line %d: %w", line, err)
	}
	if len(edges) == 0 && !hintSeen {
		return nil, fmt.Errorf("bigraph: empty konect input")
	}
	if maxVertices > 0 && nl+nr > maxVertices {
		return nil, fmt.Errorf("bigraph: konect graph %dx%d exceeds the %d-vertex limit", nl, nr, maxVertices)
	}
	b := NewBuilder(nl, nr)
	for _, e := range edges {
		if e[0] >= nl || e[1] >= nr {
			// Edges read before a late hint line escaped the inline check.
			return nil, fmt.Errorf("bigraph: konect edge (%d,%d) exceeds size hint %dx%d", e[0]+1, e[1]+1, nl, nr)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build(), nil
}

// WriteKONECT serialises g in the KONECT out.* format, including the
// "% m nL nR" size hint so that isolated boundary vertices survive a
// round trip: ReadKONECT(WriteKONECT(g)) reproduces g exactly whenever
// both sides are non-empty (the hint line requires positive sizes).
func WriteKONECT(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%% bip unweighted\n%% %d %d %d\n", g.NumEdges(), g.NL(), g.NR()); err != nil {
		return err
	}
	for l := 0; l < g.NL(); l++ {
		for _, r := range g.Neighbors(l) {
			if _, err := fmt.Fprintf(bw, "%d %d\n", l+1, int(r)-g.NL()+1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
