package bigraph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadKONECT parses the KONECT out.* bipartite edge-list format:
//
//	% bip unweighted
//	% <m> <nL> <nR>        (optional size hint)
//	<l> <r> [weight [timestamp]]
//	...
//
// Vertex ids are 1-based and the two columns index the two sides
// independently. Weights and timestamps are ignored; duplicate edges are
// merged. Side sizes are taken from the size hint when present, otherwise
// from the maximum observed ids.
func ReadKONECT(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var edges [][2]int
	nl, nr := 0, 0
	hintSeen := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if text[0] == '%' || text[0] == '#' {
			// A comment of the form "% m nl nr" is the size hint.
			fields := strings.Fields(text[1:])
			if !hintSeen && len(fields) == 3 {
				if _, err1 := strconv.Atoi(fields[0]); err1 == nil {
					a, err2 := strconv.Atoi(fields[1])
					b, err3 := strconv.Atoi(fields[2])
					if err2 == nil && err3 == nil && a > 0 && b > 0 {
						nl, nr = a, b
						hintSeen = true
					}
				}
			}
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("bigraph: konect line %d: %q", line, text)
		}
		l, err1 := strconv.Atoi(fields[0])
		rr, err2 := strconv.Atoi(fields[1])
		if err1 != nil || err2 != nil || l < 1 || rr < 1 {
			return nil, fmt.Errorf("bigraph: konect line %d: bad ids %q", line, text)
		}
		if !hintSeen {
			if l > nl {
				nl = l
			}
			if rr > nr {
				nr = rr
			}
		}
		edges = append(edges, [2]int{l - 1, rr - 1})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(edges) == 0 && !hintSeen {
		return nil, fmt.Errorf("bigraph: empty konect input")
	}
	b := NewBuilder(nl, nr)
	for _, e := range edges {
		if e[0] >= nl || e[1] >= nr {
			return nil, fmt.Errorf("bigraph: konect edge (%d,%d) exceeds size hint %dx%d", e[0]+1, e[1]+1, nl, nr)
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build(), nil
}
