package bigraph

import (
	"math/rand"
	"testing"
)

// oracleInduced is a brute-force reference for Induce: it partitions and
// sorts keep by hand and queries every kept pair through HasEdge.
func oracleInduced(g *Graph, keep []int) (*Graph, []int) {
	seen := map[int]bool{}
	var lefts, rights []int
	for _, v := range keep {
		if seen[v] {
			continue
		}
		seen[v] = true
		if g.IsLeft(v) {
			lefts = append(lefts, v)
		} else {
			rights = append(rights, v)
		}
	}
	sortInts(lefts)
	sortInts(rights)
	newToOld := append(append([]int{}, lefts...), rights...)
	b := NewBuilder(len(lefts), len(rights))
	for i, u := range lefts {
		for j, w := range rights {
			if g.HasEdge(u, w) {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build(), newToOld
}

func graphsEqual(t *testing.T, got, want *Graph, gotMap, wantMap []int) {
	t.Helper()
	if got.NL() != want.NL() || got.NR() != want.NR() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape: got %dx%d m=%d, want %dx%d m=%d",
			got.NL(), got.NR(), got.NumEdges(), want.NL(), want.NR(), want.NumEdges())
	}
	if len(gotMap) != len(wantMap) {
		t.Fatalf("newToOld length: got %d, want %d", len(gotMap), len(wantMap))
	}
	for i := range gotMap {
		if gotMap[i] != wantMap[i] {
			t.Fatalf("newToOld[%d]: got %d, want %d", i, gotMap[i], wantMap[i])
		}
	}
	for v := 0; v < got.NumVertices(); v++ {
		gn, wn := got.Neighbors(v), want.Neighbors(v)
		if len(gn) != len(wn) {
			t.Fatalf("deg(%d): got %d, want %d", v, len(gn), len(wn))
		}
		for k := range gn {
			if gn[k] != wn[k] {
				t.Fatalf("Neighbors(%d)[%d]: got %d, want %d (lists must be sorted)", v, k, gn[k], wn[k])
			}
		}
	}
}

func TestInducerMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ind := NewInducer() // one inducer across all cases: reuse is the point
	for trial := 0; trial < 60; trial++ {
		nl, nr := 1+rng.Intn(20), 1+rng.Intn(20)
		b := NewBuilder(nl, nr)
		for l := 0; l < nl; l++ {
			for r := 0; r < nr; r++ {
				if rng.Float64() < 0.3 {
					b.AddEdge(l, r)
				}
			}
		}
		g := b.Build()
		keep := make([]int, 0)
		for v := 0; v < g.NumVertices(); v++ {
			if rng.Float64() < 0.6 {
				keep = append(keep, v)
			}
		}
		if trial%3 == 0 { // unsorted and with duplicates
			rng.Shuffle(len(keep), func(i, j int) { keep[i], keep[j] = keep[j], keep[i] })
			if len(keep) > 0 {
				keep = append(keep, keep[0])
			}
		}
		want, wantMap := oracleInduced(g, keep)
		got, gotMap := ind.Induce(g, keep)
		graphsEqual(t, got, want, gotMap, wantMap)

		// The method wrappers must agree too.
		got2, gotMap2 := g.Induced(keep)
		graphsEqual(t, got2, want, gotMap2, wantMap)

		mask := make([]bool, g.NumVertices())
		for _, v := range keep {
			mask[v] = true
		}
		got3, gotMap3 := ind.InduceByMask(g, mask)
		graphsEqual(t, got3, want, gotMap3, wantMap)
	}
}

func TestInducerResultsOutliveReuse(t *testing.T) {
	g := FromEdges(3, 3, [][2]int{{0, 0}, {0, 1}, {1, 1}, {2, 2}})
	ind := NewInducer()
	sub1, map1 := ind.Induce(g, []int{0, 1, 3, 4})
	edges1 := sub1.Edges()
	// A second induction on the same Inducer must not disturb sub1.
	sub2, _ := ind.Induce(g, []int{2, 5})
	if sub2.NumEdges() != 1 {
		t.Fatalf("sub2 edges = %d, want 1", sub2.NumEdges())
	}
	if sub1.NL() != 2 || sub1.NR() != 2 || sub1.NumEdges() != 3 {
		t.Fatalf("sub1 mutated by reuse: %dx%d m=%d", sub1.NL(), sub1.NR(), sub1.NumEdges())
	}
	for i, e := range sub1.Edges() {
		if e != edges1[i] {
			t.Fatalf("sub1 edge %d changed from %v to %v after reuse", i, edges1[i], e)
		}
	}
	if map1[0] != 0 || map1[1] != 1 || map1[2] != 3 || map1[3] != 4 {
		t.Fatalf("map1 = %v", map1)
	}
}

// TestInducerAllocBudget pins the steady-state cost of an induction to
// the four escaping result allocations (Graph, off, adj, newToOld).
func TestInducerAllocBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder(64, 64)
	for l := 0; l < 64; l++ {
		for r := 0; r < 64; r++ {
			if rng.Float64() < 0.2 {
				b.AddEdge(l, r)
			}
		}
	}
	g := b.Build()
	keep := make([]int, 0)
	for v := 0; v < g.NumVertices(); v += 2 {
		keep = append(keep, v)
	}
	ind := NewInducer()
	ind.Induce(g, keep) // warm the reusable buffers
	allocs := testing.AllocsPerRun(50, func() {
		ind.Induce(g, keep)
	})
	if allocs > 4 {
		t.Fatalf("steady-state Induce: %.1f allocs/op, want ≤ 4", allocs)
	}
}
