package bigraph

// Components returns the connected components of g as lists of unified
// vertex ids. Each component is sorted ascending; components appear in
// order of their smallest vertex id, so the output is deterministic.
// Isolated vertices form singleton components.
//
// Together the components partition the vertex set, and — because every
// edge joins two vertices of the same component — inducing g on each
// component partitions the edge set as well. The maximum balanced
// biclique of g is therefore the maximum over the per-component optima,
// which is what lets the planner solve components independently.
func (g *Graph) Components() [][]int {
	n := g.NumVertices()
	comp := make([]int32, n)
	for v := range comp {
		comp[v] = -1
	}
	var out [][]int
	stack := make([]int, 0, 64)
	for v := 0; v < n; v++ {
		if comp[v] >= 0 {
			continue
		}
		id := int32(len(out))
		members := []int{}
		comp[v] = id
		stack = append(stack[:0], v)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, u)
			for _, wn := range g.Neighbors(u) {
				w := int(wn)
				if comp[w] < 0 {
					comp[w] = id
					stack = append(stack, w)
				}
			}
		}
		sortInts(members)
		out = append(out, members)
	}
	return out
}
