package bigraph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func mustGraph(t *testing.T, nl, nr int, edges [][2]int) *Graph {
	t.Helper()
	b := NewBuilder(nl, nr)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func codecGraphsEqual(a, b *Graph) bool {
	if a.NL() != b.NL() || a.NR() != b.NR() || a.NumEdges() != b.NumEdges() {
		return false
	}
	for v := 0; v < a.NL()+a.NR(); v++ {
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

func TestGraphCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		nl    int
		nr    int
		edges [][2]int
	}{
		{"empty", 0, 0, nil},
		{"no-edges", 3, 5, nil},
		{"single", 1, 1, [][2]int{{0, 0}}},
		{"k33", 3, 3, [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}, {2, 0}, {2, 1}, {2, 2}}},
		{"isolated-tail", 4, 6, [][2]int{{0, 5}, {2, 0}, {2, 5}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := mustGraph(t, tc.nl, tc.nr, tc.edges)
			enc := g.MarshalBinary()
			g2, err := UnmarshalGraph(enc)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !codecGraphsEqual(g, g2) {
				t.Fatalf("round trip mismatch: %dx%d m=%d vs %dx%d m=%d",
					g.NL(), g.NR(), g.NumEdges(), g2.NL(), g2.NR(), g2.NumEdges())
			}
			// Canonical: re-encoding the decoded graph is byte-identical.
			if !bytes.Equal(enc, g2.MarshalBinary()) {
				t.Fatal("re-encoding differs from original encoding")
			}
		})
	}
}

func TestGraphCodecRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for it := 0; it < 200; it++ {
		nl, nr := rng.Intn(12), rng.Intn(12)
		var edges [][2]int
		if nl > 0 && nr > 0 {
			for k := rng.Intn(30); k > 0; k-- {
				edges = append(edges, [2]int{rng.Intn(nl), rng.Intn(nr)})
			}
		}
		g := mustGraph(t, nl, nr, edges)
		g2, err := UnmarshalGraph(g.MarshalBinary())
		if err != nil {
			t.Fatalf("it %d: decode: %v", it, err)
		}
		if !codecGraphsEqual(g, g2) {
			t.Fatalf("it %d: round trip mismatch", it)
		}
	}
}

func TestDeltaCodecRoundTrip(t *testing.T) {
	cases := []Delta{
		{},
		{Add: [][2]int{{0, 0}}},
		{Del: [][2]int{{2, 1}, {0, 3}}},
		{Add: [][2]int{{1, 2}, {1, 2}, {0, 0}}, Del: [][2]int{{5, 7}}},
	}
	for i, d := range cases {
		enc, err := d.AppendBinary(nil)
		if err != nil {
			t.Fatalf("case %d: encode: %v", i, err)
		}
		d2, err := UnmarshalDelta(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", i, err)
		}
		if len(d2.Add) != len(d.Add) || len(d2.Del) != len(d.Del) {
			t.Fatalf("case %d: length mismatch: %+v vs %+v", i, d, d2)
		}
		for j := range d.Add {
			if d2.Add[j] != d.Add[j] {
				t.Fatalf("case %d: add[%d] = %v, want %v", i, j, d2.Add[j], d.Add[j])
			}
		}
		for j := range d.Del {
			if d2.Del[j] != d.Del[j] {
				t.Fatalf("case %d: del[%d] = %v, want %v", i, j, d2.Del[j], d.Del[j])
			}
		}
	}
}

func TestDeltaCodecRejectsNegative(t *testing.T) {
	if _, err := (Delta{Add: [][2]int{{-1, 0}}}).AppendBinary(nil); err == nil {
		t.Fatal("negative add index encoded without error")
	}
	if _, err := (Delta{Del: [][2]int{{0, -2}}}).AppendBinary(nil); err == nil {
		t.Fatal("negative del index encoded without error")
	}
}

func TestGraphCodecRejectsCorruption(t *testing.T) {
	g := mustGraph(t, 3, 3, [][2]int{{0, 0}, {1, 1}, {2, 2}})
	enc := g.MarshalBinary()

	if _, err := UnmarshalGraph(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	if _, err := UnmarshalGraph([]byte("BD\x01")); err == nil {
		t.Fatal("delta magic accepted as graph")
	}
	if _, err := UnmarshalGraph([]byte{'B', 'G', 99}); err == nil {
		t.Fatal("future version accepted")
	}
	for cut := 1; cut < len(enc); cut++ {
		if _, err := UnmarshalGraph(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := UnmarshalGraph(append(append([]byte{}, enc...), 0)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Fatal("trailing byte accepted")
	}
	// A declared edge count far beyond the payload must fail before
	// allocating, not after.
	huge := []byte{'B', 'G', 1, 2, 2, 0xff, 0xff, 0xff, 0xff, 0x0f}
	if _, err := UnmarshalGraph(huge); err == nil {
		t.Fatal("absurd edge count accepted")
	}
}

// FuzzBinaryCodec feeds arbitrary bytes to both decoders — they must
// never panic or over-allocate — and checks the canonical round trip on
// anything that decodes as a graph.
func FuzzBinaryCodec(f *testing.F) {
	g := func(nl, nr int, edges [][2]int) []byte {
		b := NewBuilder(nl, nr)
		for _, e := range edges {
			b.AddEdge(e[0], e[1])
		}
		return b.Build().MarshalBinary()
	}
	f.Add(g(0, 0, nil))
	f.Add(g(3, 3, [][2]int{{0, 0}, {0, 1}, {1, 2}, {2, 0}}))
	d, err := (Delta{Add: [][2]int{{1, 2}}, Del: [][2]int{{0, 0}}}).AppendBinary(nil)
	if err != nil {
		f.Fatalf("seed delta: %v", err)
	}
	f.Add(d)
	f.Add([]byte{'B', 'G', 1, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		if gr, err := UnmarshalGraph(data); err == nil {
			enc := gr.MarshalBinary()
			// The encoding is canonical, so decode∘encode must be the
			// identity on valid records.
			if !bytes.Equal(enc, data) {
				t.Fatalf("valid graph record not canonical: %x vs %x", data, enc)
			}
			gr2, err := UnmarshalGraph(enc)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if !codecGraphsEqual(gr, gr2) {
				t.Fatal("round trip mismatch")
			}
		}
		if dd, err := UnmarshalDelta(data); err == nil {
			enc, err := dd.AppendBinary(nil)
			if err != nil {
				t.Fatalf("re-encode decoded delta: %v", err)
			}
			if !bytes.Equal(enc, data) {
				t.Fatalf("valid delta record not canonical: %x vs %x", data, enc)
			}
		}
	})
}
