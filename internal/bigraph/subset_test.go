package bigraph

import (
	"reflect"
	"testing"
)

func TestDegWithin(t *testing.T) {
	// P4-ish: L0–R0, L0–R1, L1–R1.
	g := FromEdges(2, 2, [][2]int{{0, 0}, {0, 1}, {1, 1}})
	if d := g.DegWithin(0, nil); d != 2 {
		t.Fatalf("nil mask: deg(L0) = %d, want 2", d)
	}
	alive := []bool{true, true, false, true} // drop R0
	cases := map[int]int{0: 1, 1: 1, 2: 1, 3: 2}
	for v, want := range cases {
		if d := g.DegWithin(v, alive); d != want {
			t.Errorf("deg(%d) within mask = %d, want %d", v, d, want)
		}
	}
}

func TestDeltaEndpoints(t *testing.T) {
	d := Delta{
		Add: [][2]int{{0, 1}, {2, 0}},
		Del: [][2]int{{0, 1}, {1, 2}},
	}
	// nl=3: right-local j maps to 3+j. Deduplicated, ascending.
	got := d.Endpoints(3)
	want := []int{0, 1, 2, 3, 4, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Endpoints = %v, want %v", got, want)
	}
	if ends := (Delta{}).Endpoints(3); len(ends) != 0 {
		t.Fatalf("empty delta endpoints = %v, want none", ends)
	}
}
