// Quickstart: build a small bipartite graph, find its maximum balanced
// biclique, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/mbb"
)

func main() {
	// The paper's Figure 1(b) graph: users 1..6 on the left, items 7..12
	// on the right (0-based side-local indices here).
	edges := [][2]int{
		{0, 0},         // 1-7
		{1, 0}, {1, 1}, // 2-7, 2-8
		{2, 1}, {2, 2}, {2, 3}, // 3-8, 3-9, 3-10
		{3, 2}, {3, 3}, // 4-9, 4-10
		{4, 2}, {4, 3}, // 5-9, 5-10
		{5, 1}, {5, 4}, {5, 5}, // 6-8, 6-11, 6-12
	}
	g := mbb.FromEdges(6, 6, edges)

	res, err := mbb.Solve(g, nil) // nil options: automatic algorithm
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("algorithm: %v\n", res.Algorithm)
	fmt.Printf("maximum balanced biclique: %d vertices per side\n", res.Biclique.Size())
	fmt.Printf("left side (unified ids):  %v\n", res.Biclique.A)
	fmt.Printf("right side (unified ids): %v\n", res.Biclique.B)
	fmt.Printf("exact: %v (searched %d nodes)\n", res.Exact, res.Stats.Nodes)

	// The result is a verified biclique: every (a, b) pair is an edge.
	if !res.Biclique.IsBicliqueOf(g) || !res.Biclique.IsBalanced() {
		log.Fatal("internal error: invalid result")
	}
	fmt.Println("verified: every pair across the two sides is connected")
}
