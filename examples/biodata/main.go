// Biological data analysis: the paper's motivating sparse application.
//
// A gene–condition expression matrix is thresholded into a bipartite
// graph (gene g is connected to condition c when g is differentially
// expressed under c). A maximum balanced biclique is a perfect bicluster:
// a largest set of genes co-expressed across an equally large set of
// conditions (cf. [7, 28] in the paper). These graphs are large and
// sparse, which is hbvMBB's territory.
//
//	go run ./examples/biodata
package main

import (
	"fmt"
	"log"
	"time"

	"repro/mbb"
)

func main() {
	const (
		genes      = 12000
		conditions = 800
		signals    = 60000 // thresholded expression calls
		module     = 14    // planted co-expression module size
		seed       = 7
	)

	// Sparse background of expression calls plus one hidden co-expression
	// module (a 14×14 complete bicluster).
	g := mbb.GeneratePowerLaw(genes, conditions, signals, seed)
	g = mbb.PlantBiclique(g, module, seed+1)
	fmt.Printf("expression graph: %d genes x %d conditions, %d calls (density %.2e)\n",
		g.NL(), g.NR(), g.NumEdges(), g.Density())

	start := time.Now()
	res, err := mbb.Solve(g, &mbb.Options{Algorithm: mbb.HbvMBB, Timeout: time.Minute})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("largest perfect bicluster: %d genes x %d conditions\n",
		len(res.Biclique.A), len(res.Biclique.B))
	fmt.Printf("genes:      %v\n", locals(g, res.Biclique.A))
	fmt.Printf("conditions: %v\n", locals(g, res.Biclique.B))
	fmt.Printf("solved in %v, terminated at step %v\n",
		time.Since(start).Round(time.Millisecond), res.Stats.Step)
	fmt.Printf("vertex-centred subgraphs: %d generated, %d pruned before search\n",
		res.Stats.Subgraphs, res.Stats.SubgraphsPruned)

	if res.Biclique.Size() < module {
		log.Fatalf("missed the planted module: found %d < %d", res.Biclique.Size(), module)
	}
	if !res.Biclique.IsBicliqueOf(g) {
		log.Fatal("invalid bicluster")
	}
	fmt.Println("verified: the bicluster is complete (every gene responds to every condition)")
}

func locals(g *mbb.Graph, vs []int) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = g.LocalIndex(v)
	}
	return out
}
