// VLSI defect tolerance: the paper's motivating dense application.
//
// A reconfigurable crossbar has n×n programmable crosspoints, a fraction
// of which are defective after fabrication. Mapping a logic array onto
// the chip needs a maximal defect-free k×k subarray — exactly a maximum
// balanced biclique of the bipartite graph whose edges are the working
// crosspoints (cf. [1, 25] in the paper). Dense inputs like these are
// where denseMBB's polynomial-case machinery shines.
//
//	go run ./examples/vlsi
package main

import (
	"fmt"
	"log"
	"time"

	"repro/mbb"
)

func main() {
	const (
		rows       = 64
		cols       = 64
		defectRate = 0.12 // 12% of crosspoints are stuck open
		seed       = 2026
	)

	// Working crosspoints form a dense bipartite graph.
	crossbar := mbb.GenerateDense(rows, cols, 1-defectRate, seed)
	fmt.Printf("crossbar: %d x %d, %.1f%% of crosspoints defective\n",
		rows, cols, 100*(1-crossbar.Density()))

	start := time.Now()
	res, err := mbb.Solve(crossbar, &mbb.Options{
		Algorithm: mbb.DenseMBB,
		Timeout:   30 * time.Second,
	})
	if err != nil {
		log.Fatal(err)
	}

	k := res.Biclique.Size()
	fmt.Printf("largest defect-free subarray: %d x %d (%.1f%% of the die)\n",
		k, k, 100*float64(k*k)/float64(rows*cols))
	fmt.Printf("rows:    %v\n", locals(crossbar, res.Biclique.A))
	fmt.Printf("columns: %v\n", locals(crossbar, res.Biclique.B))
	fmt.Printf("solved in %v (%d search nodes, %d polynomial-case solves)\n",
		time.Since(start).Round(time.Millisecond), res.Stats.Nodes, res.Stats.PolyCases)
	if !res.Exact {
		fmt.Println("note: budget exhausted — the subarray is usable but may not be maximal")
	}

	// Sanity: every selected crosspoint must be working.
	for _, r := range res.Biclique.A {
		for _, c := range res.Biclique.B {
			if !crossbar.HasEdge(r, c) {
				log.Fatalf("defective crosspoint selected: (%d,%d)", r, c)
			}
		}
	}
	fmt.Println("verified: all selected crosspoints are defect-free")
}

func locals(g *mbb.Graph, vs []int) []int {
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = g.LocalIndex(v)
	}
	return out
}
