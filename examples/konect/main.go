// KONECT sweep: solve the synthetic stand-ins of the paper's Table 5
// datasets and print a result table, comparing hbvMBB with the prior
// state of the art (extBBCL).
//
//	go run ./examples/konect [-all]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"repro/mbb"
)

func main() {
	all := flag.Bool("all", false, "sweep all 30 datasets (default: a representative subset)")
	maxVerts := flag.Int("maxverts", 20000, "scale cap for generated datasets")
	budget := flag.Duration("budget", 15*time.Second, "per-solve budget")
	flag.Parse()

	subset := map[string]bool{
		"unicodelang": true, "escorts": true, "jester": true,
		"github": true, "dbpedia-genre": true, "pics-ut": true,
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\t|L|\t|R|\tedges\toptimum\thbvMBB\tstep\textBBCL")
	for _, d := range mbb.Datasets() {
		if !*all && !subset[d.Name] {
			continue
		}
		g, ok := mbb.GenerateDataset(d.Name, *maxVerts, 1)
		if !ok {
			log.Fatalf("unknown dataset %s", d.Name)
		}

		start := time.Now()
		res, err := mbb.Solve(g, &mbb.Options{Algorithm: mbb.HbvMBB, Timeout: *budget})
		if err != nil {
			log.Fatal(err)
		}
		hbvTime := time.Since(start).Round(time.Millisecond)

		start = time.Now()
		ext, err := mbb.Solve(g, &mbb.Options{Algorithm: mbb.ExtBBCL, Timeout: *budget})
		if err != nil {
			log.Fatal(err)
		}
		extCell := time.Since(start).Round(time.Millisecond).String()
		if !ext.Exact {
			extCell = "-"
		} else if ext.Biclique.Size() != res.Biclique.Size() && res.Exact {
			log.Fatalf("%s: solvers disagree: %d vs %d", d.Name, ext.Biclique.Size(), res.Biclique.Size())
		}

		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%v\t%v\t%s\n",
			d.Name, g.NL(), g.NR(), g.NumEdges(),
			res.Biclique.Size(), hbvTime, res.Stats.Step, extCell)
	}
	tw.Flush()
}
